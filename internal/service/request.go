package service

// Request is one end-to-end service request walking the topology's stages
// sequentially. Its overall latency is the sum of stage latencies (Eq. 4),
// realised directly by the event order: a stage only starts after the
// previous one delivered all of its sub-responses.
type Request struct {
	ID        int
	ArrivedAt float64
	// Tenant names the tenant the request arrived under ("" for
	// untenanted traffic); completion records the latency under the
	// tenant's breakdown as well as the overall distribution.
	Tenant string
	// Class is the request class carried by trace metadata, recorded but
	// not acted on.
	Class string

	svc        *Service
	stage      int
	stageStart float64
	pending    int // sub-requests outstanding in the current stage

	// gr is the DAG bookkeeping, allocated only when the deployment runs
	// a GraphPlan; nil requests walk the linear stage path.
	gr *graphReq
}

// SubRequest is the unit of work one component contributes to one request's
// stage. A policy may execute it on several instances (redundancy) or
// re-execute it after a delay (reissue); the first completion wins and
// defines the component latency the evaluation reports.
type SubRequest struct {
	Req  *Request
	Comp *Component

	IssuedAt float64
	done     bool
	winner   *Execution

	execs []*Execution

	// cancelOnStart, when positive, sends cancellation messages to sibling
	// executions when any execution begins service; the messages take
	// effect after this network delay (seconds). Zero disables the
	// mechanism (Basic, reissue).
	cancelOnStart float64
	cancelSent    bool

	// OnDone, if set by the policy, is called once when the winning
	// execution completes (reissue policies use it to update their
	// expected-latency estimates).
	OnDone func(winner *Execution, now float64)

	// visit is the DAG visit that issued the sub-request (nil on the
	// linear stage path); completion routes to it instead of the
	// request's stage accounting.
	visit *graphVisit
	// baseOverride, when positive, replaces the stage's nominal service
	// time for this sub-request's executions — storage nodes set it to
	// the drawn per-operation work. Immutable after dispatch, so
	// instance lanes may read it freely.
	baseOverride float64
}

// Done reports whether a winning execution has completed.
func (sub *SubRequest) Done() bool { return sub.done }

// Winner returns the winning execution, or nil.
func (sub *SubRequest) Winner() *Execution { return sub.winner }

// Executions returns all executions issued so far.
func (sub *SubRequest) Executions() []*Execution { return sub.execs }

// EnableCancelOnStart turns on redundancy-style cancellation: when one
// execution starts service, siblings still queued are cancelled after the
// given message delay.
func (sub *SubRequest) EnableCancelOnStart(delay float64) { sub.cancelOnStart = delay }

// IssueTo dispatches the sub-request to an instance at virtual time now,
// creating an execution and enqueueing it. Policies call this one or more
// times per sub-request, always from root-class context. In laned mode the
// dispatch message pays the network transit delay before reaching the
// instance's lane, and the root's outstanding-execution ledger for the
// instance (PickInstance's load signal) is charged at send time.
func (sub *SubRequest) IssueTo(in *Instance, now float64) *Execution {
	e := &Execution{Sub: sub, Inst: in, IssuedAt: now}
	sub.execs = append(sub.execs, e)
	svc := sub.svc()
	if svc.lanes != nil {
		in.rootOutstanding++
		svc.scheduleData(rootClass, in.classID(), now+LaneTransitDelay, func(arriveNow float64) {
			in.enqueue(e, arriveNow)
		})
		return e
	}
	in.enqueue(e, now)
	return e
}

func (sub *SubRequest) svc() *Service { return sub.Req.svc }

// onStart is invoked when any execution of this sub-request begins service
// (sequential mode only). With cancellation enabled, it sends cancel
// messages to sibling executions; they land after the configured network
// delay, and only affect executions still queued at that point. Two
// replicas that start within the delay window both run to completion — the
// paper's "cancellation messages both in flight" effect.
func (sub *SubRequest) onStart(started *Execution) {
	if sub.cancelOnStart <= 0 || sub.cancelSent {
		return
	}
	sub.cancelSent = true
	svc := sub.svc()
	svc.engine.After(sub.cancelOnStart, func(now float64) {
		for _, e := range sub.execs {
			if e != started && e.State == ExecQueued {
				e.Inst.cancelQueued(e, now)
			}
		}
	})
}

// onStartLaned is the laned counterpart of onStart: it runs on the root
// class when an instance's start notice arrives (one LaneTransitDelay
// after service began at startedAt). The root relays cancellation
// messages to every sibling's instance class, timed from the true start —
// they land startedAt+cancelOnStart, exactly when the sequential physics
// would land them relative to the start. Because the notice already
// consumed one transit delay, the relay needs cancelOnStart ≥
// 2×LaneTransitDelay to respect the plane's lookahead; the simulation
// validates that at construction. Whether a sibling is still queued is
// decided by its own lane when the message lands — the root never peeks
// at queue state it doesn't own.
func (sub *SubRequest) onStartLaned(started *Execution, startedAt, now float64) {
	if sub.cancelSent {
		return
	}
	sub.cancelSent = true
	svc := sub.svc()
	fire := startedAt + sub.cancelOnStart
	// cancelOnStart ≥ 2×LaneTransitDelay is validated at construction;
	// the clamp only absorbs the one-ulp rounding of the equality case.
	if min := now + LaneTransitDelay; fire < min {
		fire = min
	}
	for _, e := range sub.execs {
		if e == started {
			continue
		}
		e := e
		svc.scheduleData(rootClass, e.Inst.classID(), fire, func(cancelNow float64) {
			e.Inst.cancelQueued(e, cancelNow)
		})
	}
}

// onComplete is invoked when any execution finishes. The first completion
// wins: the component latency (issue → completion of the quickest replica)
// is recorded and the request's stage accounting advances. Later
// completions are losers whose server time was already charged.
func (sub *SubRequest) onComplete(e *Execution, now float64) {
	if sub.done {
		return
	}
	sub.done = true
	sub.winner = e
	svc := sub.svc()
	svc.collector.RecordComponent(now, sub.Comp.Stage, now-sub.IssuedAt)
	if sub.OnDone != nil {
		sub.OnDone(e, now)
	}
	if sub.visit != nil {
		sub.visit.visitSubDone(now)
		return
	}
	sub.Req.subDone(now)
}

// startStage fans the request out to every component of its current stage.
func (r *Request) startStage(now float64) {
	svc := r.svc
	comps := svc.stageComponents[r.stage]
	r.stageStart = now
	r.pending = len(comps)
	for _, c := range comps {
		sub := &SubRequest{Req: r, Comp: c, IssuedAt: now}
		svc.policy.Dispatch(svc, sub, now)
	}
}

// subDone accounts one completed sub-request; when the stage drains it
// advances to the next stage or completes the request.
func (r *Request) subDone(now float64) {
	r.pending--
	if r.pending > 0 {
		return
	}
	r.stage++
	if r.stage < len(r.svc.stageComponents) {
		r.startStage(now)
		return
	}
	r.svc.completeRequest(r, now)
}
