package service

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/lane"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// Policy routes sub-requests to component instances. Implementations live
// in internal/baseline (Basic, RED-k, RI-p); PCS uses the Basic policy plus
// the component-level scheduler.
type Policy interface {
	// Name identifies the policy in reports (e.g. "RED-3").
	Name() string
	// Replicas returns how many instances each component needs under this
	// policy (1 for Basic/PCS, k for RED-k, 2 for reissue).
	Replicas() int
	// Dispatch issues the sub-request to one or more instances at virtual
	// time now and may schedule reissue timers via Service.AfterData.
	// Dispatch always runs in root-class context (request bookkeeping), so
	// it may read sub-request state and issue freely.
	Dispatch(svc *Service, sub *SubRequest, now float64)
}

// LaneTransitDelay is the network transit lower bound (seconds) every
// cross-class data-plane message pays in laned mode: dispatch reaching an
// instance, a completion or start notice reaching the request's root
// bookkeeping. It is the manufactured lookahead conservative parallel
// execution synchronizes on — 0.2 ms, well under the 3 ms
// cancellation-message delay and the millisecond-scale service times, so
// it perturbs the modeled physics far less than the queueing it enables
// us to simulate faster. Sequential runs (no Config.Lanes) pay no delay
// at all: their physics are byte-for-byte the pre-lane ones.
const LaneTransitDelay = 0.0002

// rootClass is the affinity class owning request/sub-request bookkeeping:
// dispatch, first-completion-wins arbitration, stage advancement, reissue
// timers and the load counters PickInstance reads. Each component
// instance gets its own class (see Instance.classID).
const rootClass = 0

// MaxLaneClasses bounds the affinity-class space of a deployment: the
// root class plus one class per potential instance. Replica r of a
// component can exist for r up to nodes-1 (replicas of a component never
// share a node), whether placed at deployment or conjured by autoscaling.
func MaxLaneClasses(t Topology, nodes int) int {
	return 1 + t.NumComponents()*nodes
}

// Config assembles a service deployment.
type Config struct {
	Topology Topology
	// Law is the ground-truth interference law; zero value selects
	// DefaultLaw with the cluster's node-0 capacity.
	Law InterferenceLaw
	// ReplicaFootprintScale scales non-primary replicas' demand relative
	// to the primary. With utilisation-scaled demand, idle replicas are
	// already near-free, so the default is 1 (replicas are full VMs).
	ReplicaFootprintScale float64
	// DemandPeriod is how often instance demands are refreshed from server
	// utilisation and node aggregates recomputed (default 1 s, the
	// system-level monitoring cadence).
	DemandPeriod float64
	// ComponentLatencyReservoir bounds the per-component latency sample; 0
	// selects 100 000.
	ComponentLatencyReservoir int
	// Warmup is the virtual time before which latencies are discarded.
	Warmup float64
	// Pool, when non-nil, shards each demand tick across its workers:
	// instance utilisation refreshes and node aggregate recomputes are
	// per-entity work with frozen inputs, so the tick is bit-identical at
	// any shard count. Nil ticks inline.
	Pool *shard.Pool
	// Lanes, when non-nil, runs the request path on the laned data plane:
	// dispatch, start/completion notices and cancellations become
	// timestamped inter-class messages (each paying LaneTransitDelay) and
	// execute in conservative parallel windows. Results are byte-identical
	// at any lane count but differ from the nil (sequential) physics,
	// which stay exactly the historical ones.
	Lanes *lane.Plane
	// Graph, when non-nil, replaces the linear stage walk with DAG
	// execution: node i of the plan runs on stage i of the topology, so
	// the plan and topology must agree on length (both come from the same
	// graph.Spec). Nil keeps the historical sequential-stage flow.
	Graph *GraphPlan
}

// Service wires a topology onto a cluster and runs the open-loop request
// workload. It owns the collector and exposes migration hooks for the
// scheduler.
type Service struct {
	cfg     Config
	engine  *sim.Engine
	cluster *cluster.Cluster
	law     InterferenceLaw
	rng     *xrand.Source
	policy  Policy

	// lanes is the laned data plane when configured; laneSeed roots the
	// per-instance service-time RNG streams (xrand.StreamSeed(laneSeed,
	// classID+1)) that replace the shared svc.rng consumption order —
	// stream identity is a pure function of the instance's class, so draws
	// are identical at any lane count.
	lanes    *lane.Plane
	laneSeed int64

	components      []*Component // dense, Global index order
	stageComponents [][]*Component

	// deployedReplicas is the replica count the topology was placed with;
	// activeReplicas is the count dispatch currently spreads over —
	// closed-loop autoscaling moves it, growing Instances lazily past the
	// deployment when scaling above it. Mid-run policy swaps may not
	// demand more instances than are active.
	deployedReplicas int
	activeReplicas   int
	// workFactor scales every execution's nominal work in (0, 1] — the
	// brownout actuator; 1 is full fidelity.
	workFactor float64
	// offeredRate is the arrival rate the workload offers (set by
	// StartTraffic/StartArrivals and moved by steering: rate steps,
	// diurnal modulation); admissionFactor in (0, 1] is the throttle
	// actuator. The traffic source always runs at offeredRate ×
	// admissionFactor, so throttling composes with — never overwrites —
	// scripted load.
	offeredRate     float64
	admissionFactor float64
	// src is the arrival source once StartTraffic has run; steering
	// retargets its rate mid-run through SetRate.
	src traffic.Source

	collector *trace.Collector

	// graph is the compiled DAG when the deployment runs one; graphRNG is
	// its dedicated stream (edge draws, storage operations — forked only
	// in graph mode so non-graph runs keep their historical draw
	// sequences); breakers holds per-node circuit state; graphStats the
	// failure-semantics counters. failed/timedOut are request outcomes —
	// always zero on non-graph deployments, whose requests cannot fail.
	graph      *GraphPlan
	graphRNG   *xrand.Source
	breakers   []breakerState
	graphStats GraphStats
	failed     int
	timedOut   int

	arrivals   int
	completed  int
	nextReqID  int
	migrations int

	// admissionDrops counts arrivals the traffic layer denied (a tenant's
	// token bucket ran dry); tenantArrivals/tenantDrops break admitted and
	// denied counts down by tenant, allocated lazily on first tenanted
	// arrival.
	admissionDrops int
	tenantArrivals map[string]int
	tenantDrops    map[string]int

	// OnArrival, if set, is called at every request arrival (the monitor
	// uses it to estimate λ, as the paper's monitor does from service
	// logs).
	OnArrival func(now float64)
}

// New deploys a service. Component instances are placed round-robin across
// nodes; replicas of the same component land on distinct nodes (required
// for redundancy to make sense, and matching the paper's setup where each
// component VM sits on some node alongside batch-job VMs).
func New(e *sim.Engine, cl *cluster.Cluster, src *xrand.Source, policy Policy, cfg Config) (*Service, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("service: nil policy")
	}
	if cfg.ReplicaFootprintScale <= 0 {
		cfg.ReplicaFootprintScale = 1
	}
	if cfg.DemandPeriod <= 0 {
		cfg.DemandPeriod = 1
	}
	if cfg.ComponentLatencyReservoir <= 0 {
		cfg.ComponentLatencyReservoir = 100_000
	}
	law := cfg.Law
	if law.Capacity.IsZero() && law.Alpha.IsZero() {
		law = DefaultLaw(cl.Node(0).Capacity)
	}
	replicas := policy.Replicas()
	if replicas < 1 {
		return nil, fmt.Errorf("service: policy %s requests %d replicas", policy.Name(), replicas)
	}
	if replicas > cl.NumNodes() {
		return nil, fmt.Errorf("service: %d replicas need at least as many nodes, cluster has %d",
			replicas, cl.NumNodes())
	}

	svc := &Service{
		cfg:              cfg,
		engine:           e,
		cluster:          cl,
		law:              law,
		rng:              src.Fork(),
		policy:           policy,
		deployedReplicas: replicas,
		activeReplicas:   replicas,
		workFactor:       1,
		admissionFactor:  1,
	}
	svc.collector = trace.NewCollector(len(cfg.Topology.Stages), cfg.ComponentLatencyReservoir, src.Fork())
	svc.collector.WarmupUntil = cfg.Warmup
	if cfg.Lanes != nil {
		// The per-instance stream root is drawn only in laned mode, after
		// the collector's fork, so sequential deployments consume exactly
		// the historical draw sequence.
		svc.lanes = cfg.Lanes
		svc.laneSeed = src.Int63()
	}
	if cfg.Graph != nil {
		if got, want := len(cfg.Graph.Nodes), len(cfg.Topology.Stages); got != want {
			return nil, fmt.Errorf("service: graph %q has %d nodes but topology %q has %d stages",
				cfg.Graph.Name, got, cfg.Topology.Name, want)
		}
		// The graph stream is forked only in graph mode, after every
		// existing fork, so non-graph deployments (laned or not) keep
		// their historical draw sequences untouched.
		svc.graph = cfg.Graph
		svc.graphRNG = src.Fork()
		svc.breakers = make([]breakerState, len(cfg.Graph.Nodes))
	}

	global := 0
	nodeCursor := 0
	k := cl.NumNodes()
	for si, spec := range cfg.Topology.Stages {
		stage := make([]*Component, 0, spec.Components)
		for ci := 0; ci < spec.Components; ci++ {
			comp := &Component{Stage: si, IndexInStage: ci, Global: global, Spec: spec, homeNode: nodeCursor}
			for r := 0; r < replicas; r++ {
				// Primary round-robins over the cluster; replica r sits r
				// nodes further along so a component's replicas never share
				// a node. placeReplica applies the same rule when scale-up
				// grows a component later.
				svc.placeReplica(comp, r)
			}
			nodeCursor = (nodeCursor + 1) % k
			stage = append(stage, comp)
			svc.components = append(svc.components, comp)
			global++
		}
		svc.stageComponents = append(svc.stageComponents, stage)
	}

	// Refresh utilisation-scaled demands on the monitoring cadence so that
	// executed work — including redundant executions — shows up as node
	// contention.
	e.Every(cfg.DemandPeriod, func(now float64) { svc.demandTick(now) })
	return svc, nil
}

// placeReplica creates replica r of comp at (homeNode + r) mod nodes and
// hosts it there. The rule is the deployment-time placement rule, so a
// replica conjured by mid-run scale-up lands exactly where it would have
// at deployment — placement never depends on when scaling ran, or on the
// component's primary having migrated since.
func (s *Service) placeReplica(comp *Component, r int) {
	nodeID := (comp.homeNode + r) % s.cluster.NumNodes()
	in := &Instance{
		Comp:    comp,
		Replica: r,
		id:      fmt.Sprintf("c%d.%d.r%d", comp.Stage, comp.IndexInStage, r),
		svc:     s,
		nodeID:  nodeID,
	}
	s.cluster.Node(nodeID).Host(in)
	comp.Instances = append(comp.Instances, in)
}

// demandTick refreshes every instance's utilisation-scaled demand and the
// node aggregates. The tick executes inside one engine event, so it is a
// window barrier: first every instance refreshes its own EWMA and demand
// scale (instance-local state, shardable by component), then every node
// re-sums its hosted demands in hosting order (node-local state, shardable
// by node). Neither region draws randomness, so results are identical at
// any shard count.
func (s *Service) demandTick(now float64) {
	pool := s.cfg.Pool
	pool.Run(len(s.components), func(_, lo, hi int) {
		for _, c := range s.components[lo:hi] {
			for _, in := range c.Instances {
				in.demandTick(now)
			}
		}
	})
	nodes := s.cluster.Nodes()
	pool.Run(len(nodes), func(_, lo, hi int) {
		for _, n := range nodes[lo:hi] {
			n.Refresh()
		}
	})
}

// Components returns all components in Global index order.
func (s *Service) Components() []*Component { return s.components }

// Component returns the component with the given global index.
func (s *Service) Component(global int) *Component { return s.components[global] }

// StageComponents returns the components of one stage.
func (s *Service) StageComponents(stage int) []*Component { return s.stageComponents[stage] }

// NumStages returns the number of sequential stages.
func (s *Service) NumStages() int { return len(s.stageComponents) }

// Collector exposes the latency collector.
func (s *Service) Collector() *trace.Collector { return s.collector }

// Policy returns the active execution policy.
func (s *Service) Policy() Policy { return s.policy }

// SetPolicy swaps the dispatch policy mid-run. Sub-requests already in
// flight finish under the policy that dispatched them; new dispatches use
// the new policy. The new policy may not demand more replicas than are
// currently active (scale up first if it does); demanding fewer is fine —
// surplus replicas idle.
func (s *Service) SetPolicy(p Policy) error {
	if p == nil {
		return fmt.Errorf("service: nil policy")
	}
	if r := p.Replicas(); r > s.activeReplicas {
		return fmt.Errorf("service: policy %s needs %d replicas, deployment has %d active",
			p.Name(), r, s.activeReplicas)
	}
	s.policy = p
	return nil
}

// DeployedReplicas reports the replica count the topology was placed with.
func (s *Service) DeployedReplicas() int { return s.deployedReplicas }

// ActiveReplicas reports the per-component replica count dispatch
// currently spreads over.
func (s *Service) ActiveReplicas() int { return s.activeReplicas }

// SetActiveReplicas scales the deployment: dispatch spreads new work over
// the first n replicas of every component. Scaling up past the replicas a
// component already has places and hosts the missing instances at their
// deterministic deployment positions; scaling down parks the surplus —
// parked instances drain the work they already hold and then idle at the
// VM background footprint, so a later scale-up reactivates them instantly.
// n must cover the active dispatch policy's replica need (a RED-3 world
// cannot drop below 3) and cannot exceed the cluster size (a component's
// replicas never share a node).
func (s *Service) SetActiveReplicas(n int) error {
	if n < 1 {
		return fmt.Errorf("service: active replicas must be at least 1, got %d", n)
	}
	if k := s.cluster.NumNodes(); n > k {
		return fmt.Errorf("service: %d replicas exceed cluster capacity (%d nodes; replicas of a component never share a node)", n, k)
	}
	if r := s.policy.Replicas(); n < r {
		return fmt.Errorf("service: policy %s needs %d replicas, cannot scale to %d",
			s.policy.Name(), r, n)
	}
	for _, c := range s.components {
		for r := len(c.Instances); r < n; r++ {
			s.placeReplica(c, r)
		}
	}
	s.activeReplicas = n
	return nil
}

// ActiveInstanceCount reports the total number of instances dispatch may
// currently use across the deployment: components × active replicas.
func (s *Service) ActiveInstanceCount() int { return len(s.components) * s.activeReplicas }

// WorkFactor reports the current per-request work multiplier in (0, 1].
func (s *Service) WorkFactor() float64 { return s.workFactor }

// SetWorkFactor sets the brownout actuator: every execution started from
// now on draws its service time from base·f instead of the stage's full
// nominal work. f is a fidelity fraction in (0, 1]; 1 restores full
// service. The change never renumbers random draws, so browned-out runs
// stay bit-reproducible.
func (s *Service) SetWorkFactor(f float64) error {
	if f <= 0 || f > 1 {
		return fmt.Errorf("service: work factor must be in (0, 1], got %g", f)
	}
	s.workFactor = f
	return nil
}

// PickInstance returns the active instance dispatch should use for one
// execution of comp: the primary while one replica is active (the
// deployment-time behavior, untouched by this feature), otherwise the
// least-loaded active instance — shortest queue, idle server breaking
// ties, lowest replica index breaking the rest. The choice reads only
// deterministic queue state, never randomness. In laned mode the load
// signal is the root class's own outstanding-execution ledger instead of
// the instances' queue state, which belongs to other lanes mid-window —
// the ledger is what a real load balancer sees: work it sent minus
// completions it heard back about.
func (s *Service) PickInstance(comp *Component) *Instance {
	active := comp.ActiveInstances()
	best := active[0]
	if len(active) == 1 {
		return best
	}
	if s.lanes != nil {
		for _, in := range active[1:] {
			if in.rootOutstanding < best.rootOutstanding {
				best = in
			}
		}
		return best
	}
	bestLoad := best.QueueLen()
	if best.Busy() {
		bestLoad++
	}
	for _, in := range active[1:] {
		load := in.QueueLen()
		if in.Busy() {
			load++
		}
		if load < bestLoad {
			best, bestLoad = in, load
		}
	}
	return best
}

// Engine returns the simulation engine the service runs on.
func (s *Service) Engine() *sim.Engine { return s.engine }

// scheduleData schedules a data-plane event at absolute time at, sent by
// affinity class src to class dst. Sequential deployments fall back to
// the engine — called from inside an event, engine.At(at, fn) with
// at = now + d is exactly engine.After(d, fn), so the facade is
// physics-neutral there. Laned deployments route through the plane,
// where cross-class sends must keep at ≥ now + LaneTransitDelay.
func (s *Service) scheduleData(src, dst int, at float64, fn sim.Event) {
	if s.lanes == nil {
		s.engine.At(at, fn)
		return
	}
	s.lanes.Schedule(src, dst, at, fn)
}

// AfterData schedules fn at now+d on the request path's root affinity
// class. Policies use it for reissue timers and any other root-context
// follow-up: in sequential mode it is engine.After; in laned mode the
// timer stays on the root class's own lane, so it needs no transit delay
// and fires in canonical order with the rest of the request bookkeeping.
// now must be the virtual time of the event calling AfterData.
func (s *Service) AfterData(now, d float64, fn func(now float64)) {
	s.scheduleData(rootClass, rootClass, now+d, fn)
}

// Cluster returns the hosting cluster.
func (s *Service) Cluster() *cluster.Cluster { return s.cluster }

// Law returns the ground-truth interference law (profiling harnesses use it
// through probe runs; the predictor itself never touches it).
func (s *Service) Law() InterferenceLaw { return s.law }

// RNG returns the service's random source (policies draw replica choices
// from it so runs stay reproducible).
func (s *Service) RNG() *xrand.Source { return s.rng }

// Arrivals, Completed and Migrations report run counters.
func (s *Service) Arrivals() int { return s.arrivals }

// Completed reports the number of fully answered requests.
func (s *Service) Completed() int { return s.completed }

// Migrations reports how many component migrations have landed.
func (s *Service) Migrations() int { return s.migrations }

// InjectRequest admits one untenanted request now.
func (s *Service) InjectRequest() *Request {
	return s.injectArrival(traffic.Meta{})
}

// injectArrival admits one request carrying the arrival's metadata.
func (s *Service) injectArrival(meta traffic.Meta) *Request {
	now := s.engine.Now()
	r := &Request{ID: s.nextReqID, ArrivedAt: now, Tenant: meta.Tenant, Class: meta.Class, svc: s}
	s.nextReqID++
	s.arrivals++
	if meta.Tenant != "" {
		if s.tenantArrivals == nil {
			s.tenantArrivals = make(map[string]int)
		}
		s.tenantArrivals[meta.Tenant]++
	}
	if s.OnArrival != nil {
		s.OnArrival(now)
	}
	if s.graph != nil {
		s.graphStart(r, now)
	} else {
		r.startStage(now)
	}
	return r
}

// recordDrop accounts one arrival the traffic layer denied admission.
func (s *Service) recordDrop(tenant string) {
	s.admissionDrops++
	if tenant != "" {
		if s.tenantDrops == nil {
			s.tenantDrops = make(map[string]int)
		}
		s.tenantDrops[tenant]++
	}
}

// StartTraffic drives the run's arrivals from a traffic source until
// either maxRequests arrivals (0 = unlimited, denied arrivals count) or
// source exhaustion or the engine's horizon ends the run. The source is
// pulled from the engine's own event chain — each arrival's event asks
// for the next one — so any deterministic Source composes with slicing,
// sharding and steering untouched. Arrivals the source marks Denied are
// counted as admission drops and never enter the service.
func (s *Service) StartTraffic(src traffic.Source, maxRequests int) {
	s.src = src
	s.offeredRate = src.Rate()
	var schedule func(prev float64)
	count := 0
	schedule = func(prev float64) {
		a, ok := src.Next(prev)
		if !ok {
			return
		}
		s.engine.At(a.At, func(float64) {
			if a.Meta.Denied {
				s.recordDrop(a.Meta.Tenant)
			} else {
				s.injectArrival(a.Meta)
			}
			count++
			if maxRequests == 0 || count < maxRequests {
				schedule(a.At)
			}
		})
	}
	schedule(0)
}

// StartArrivals schedules an open-loop Poisson arrival stream at rate
// requests/second until either maxRequests arrivals (0 = unlimited) or the
// engine's horizon ends the run. It is the scalar compat path: the Poisson
// source is constructed from the same stream fork, at the same rate
// product, as before the traffic.Source redesign, so scalar-configured
// runs reproduce pre-redesign reports byte for byte.
func (s *Service) StartArrivals(rate float64, maxRequests int) {
	s.StartTraffic(traffic.NewPoisson(s.rng.Fork(), rate*s.admissionFactor), maxRequests)
	s.offeredRate = rate
}

// Traffic returns the active arrival source, nil before StartTraffic.
func (s *Service) Traffic() traffic.Source { return s.src }

// ArrivalRate reports the traffic source's current admitted intensity in
// requests/second, 0 before StartTraffic.
func (s *Service) ArrivalRate() float64 {
	if s.src == nil {
		return 0
	}
	return s.src.Rate()
}

// SetArrivalRate changes the offered rate for arrivals generated after
// the next already-scheduled one (one arrival is always in flight). The
// admitted rate is offered × admission factor, so steering the offered
// load composes with an active admission throttle; non-Poisson sources
// interpret the product as a speed factor against their nominal intensity
// (see traffic.Source.SetRate). The rate must be positive; steering that
// wants "off" should instead let the request budget run out.
func (s *Service) SetArrivalRate(rate float64) error {
	if s.src == nil {
		return fmt.Errorf("service: arrivals not started")
	}
	if rate <= 0 {
		return fmt.Errorf("service: arrival rate must be positive, got %g", rate)
	}
	if err := s.src.SetRate(rate * s.admissionFactor); err != nil {
		return err
	}
	s.offeredRate = rate
	return nil
}

// OfferedArrivalRate reports the arrival rate the workload currently
// offers, before admission throttling — what steering scripts move.
func (s *Service) OfferedArrivalRate() float64 { return s.offeredRate }

// AdmissionFactor reports the current admission throttle position in
// (0, 1]: the fraction of the offered arrival rate actually admitted.
func (s *Service) AdmissionFactor() float64 { return s.admissionFactor }

// SetAdmissionFactor sets the admission throttle: from the next
// interarrival draw on, the traffic source runs at offered × f. f is a
// fraction in (0, 1]; 1 admits everything. The throttle multiplies the
// offered rate rather than replacing it, so it composes with rate-step
// and diurnal steering instead of overwriting their script.
func (s *Service) SetAdmissionFactor(f float64) error {
	if f <= 0 || f > 1 {
		return fmt.Errorf("service: admission factor must be in (0, 1], got %g", f)
	}
	s.admissionFactor = f
	if s.src != nil {
		return s.src.SetRate(s.offeredRate * f)
	}
	return nil
}

// AdmissionDrops reports how many arrivals the traffic layer denied
// (per-tenant token buckets); 0 for unthrottled sources.
func (s *Service) AdmissionDrops() int { return s.admissionDrops }

// TenantArrivals reports admitted request counts by tenant, nil for
// untenanted traffic. The returned map is the live counter — read, don't
// mutate.
func (s *Service) TenantArrivals() map[string]int { return s.tenantArrivals }

// TenantDrops reports denied request counts by tenant, nil when nothing
// was denied.
func (s *Service) TenantDrops() map[string]int { return s.tenantDrops }

// QueuedExecutions reports the number of executions waiting in instance
// queues across the whole deployment (excluding the ones in service,
// including cancelled-but-unswept entries) — the live dashboard's pressure
// gauge.
func (s *Service) QueuedExecutions() int {
	q := 0
	for _, c := range s.components {
		for _, in := range c.Instances {
			q += in.QueueLen()
		}
	}
	return q
}

// BusyInstances reports how many instance servers are currently occupied.
func (s *Service) BusyInstances() int {
	b := 0
	for _, c := range s.components {
		for _, in := range c.Instances {
			if in.Busy() {
				b++
			}
		}
	}
	return b
}

// completeRequest records a finished request.
func (s *Service) completeRequest(r *Request, now float64) {
	s.completed++
	s.collector.RecordOverall(now, now-r.ArrivedAt)
	if r.Tenant != "" {
		s.collector.RecordTenantOverall(r.Tenant, now, now-r.ArrivedAt)
	}
}

// Allocation returns the current component→node allocation array (the
// paper's A[m]), using each component's primary instance.
func (s *Service) Allocation() []int {
	a := make([]int, len(s.components))
	for i, c := range s.components {
		a[i] = c.Primary().NodeID()
	}
	return a
}
