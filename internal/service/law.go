package service

import (
	"repro/internal/cluster"
	"repro/internal/xrand"
)

// InterferenceLaw is the ground truth mapping from a node's background
// contention to a component's service time. It substitutes for physical
// resource contention on the paper's Xen testbed (see DESIGN.md §2): the
// mean service time is the uncontended base stretched by a contention
// multiplier, and individual service times are exponentially distributed
// around that mean (the paper's §IV-B notes service components commonly
// have exponential service times, C²x = 1).
//
// The multiplier is
//
//	mult(U) = 1 + αcore·(u + κ·u²) + αcache·uc + αdisk·ud + αnet·un
//
// with each metric normalised by the node capacity to [0, 1]. The quadratic
// core term models the super-linear slowdown as a node's cores approach
// saturation; the predictor's degree-2 regressions can learn it but are not
// handed it.
type InterferenceLaw struct {
	// Capacity normalises raw contention metrics; use the hosting node's
	// capacity.
	Capacity cluster.Vector
	// Alpha is the sensitivity of service time to each (normalised)
	// resource metric.
	Alpha cluster.Vector
	// CoreConvexity is the κ coefficient of the quadratic core term.
	CoreConvexity float64
	// NoiseSigma shapes the service-time distribution around its mean:
	// positive values draw multiplicative lognormal noise with this sigma
	// (C²x = exp(σ²)−1); zero or negative selects exponential service
	// times (C²x = 1, the paper's M/M/1 special case).
	NoiseSigma float64
}

// DefaultLaw returns the law used across the evaluation, calibrated so that
// a typical mixed batch co-runner set (≈2 jobs/node) stretches service
// times by 1.5–3× and a saturated node by up to ≈6×. The intrinsic noise
// is small (σ=0.18, C²x≈0.03): the paper's premise is that component
// latency variability is dominated by interference from co-located batch
// jobs, not by intrinsic service randomness (§II-A).
func DefaultLaw(capacity cluster.Vector) InterferenceLaw {
	return InterferenceLaw{
		Capacity: capacity,
		Alpha: cluster.Vector{
			cluster.Core:   1.40,
			cluster.Cache:  0.60,
			cluster.DiskBW: 0.70,
			cluster.NetBW:  0.50,
		},
		CoreConvexity: 1.0,
		NoiseSigma:    0.12,
	}
}

// normalise maps a raw metric to [0, 1] against capacity; zero-capacity
// resources pass through untouched.
func (law InterferenceLaw) normalise(u cluster.Vector) cluster.Vector {
	for r := 0; r < cluster.NumResources; r++ {
		if law.Capacity[r] > 0 {
			u[r] /= law.Capacity[r]
			if u[r] > 1 {
				u[r] = 1
			}
		}
	}
	return u
}

// Multiplier returns the contention multiplier for background contention u
// (raw units; normalisation is internal). It is ≥ 1.
func (law InterferenceLaw) Multiplier(u cluster.Vector) float64 {
	n := law.normalise(u)
	uc := n[cluster.Core]
	m := 1 +
		law.Alpha[cluster.Core]*(uc+law.CoreConvexity*uc*uc) +
		law.Alpha[cluster.Cache]*n[cluster.Cache] +
		law.Alpha[cluster.DiskBW]*n[cluster.DiskBW] +
		law.Alpha[cluster.NetBW]*n[cluster.NetBW]
	return m
}

// MeanServiceTime returns the expected service time for a component with
// the given base time under background contention u.
func (law InterferenceLaw) MeanServiceTime(base float64, u cluster.Vector) float64 {
	return base * law.Multiplier(u)
}

// Sample draws one service time around MeanServiceTime: lognormal with the
// law's NoiseSigma (general service times — the G of the paper's M/G/1
// model), or exponential when NoiseSigma ≤ 0 (the M/M/1 special case the
// paper notes). Either way, time-varying contention makes the long-run
// service-time distribution general.
func (law InterferenceLaw) Sample(base float64, u cluster.Vector, src *xrand.Source) float64 {
	mean := law.MeanServiceTime(base, u)
	if law.NoiseSigma <= 0 {
		return src.Exp(mean)
	}
	return src.LogNormalMean(mean, law.NoiseSigma)
}
