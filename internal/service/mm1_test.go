package service

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// TestInstanceBehavesAsMM1 validates the queueing substrate against theory:
// a single component with exponential service times (NoiseSigma=0) and
// Poisson arrivals is an M/M/1 queue, so its mean latency must converge to
// 1/(µ−λ) — the special case the paper's Eq. 2 reduces to.
func TestInstanceBehavesAsMM1(t *testing.T) {
	topo := Topology{
		Name: "mm1",
		Stages: []StageSpec{
			{Name: "only", Components: 1, BaseServiceTime: 0.001,
				Demand: cluster.Vector{0, 0, 0, 0}}, // no self-contention
		},
	}
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		engine := sim.NewEngine()
		cl := cluster.New(1, cluster.DefaultCapacity())
		svc, err := New(engine, cl, xrand.New(42), basicPolicy{}, Config{
			Topology: topo,
			Law: InterferenceLaw{
				Capacity:   cl.Node(0).Capacity,
				NoiseSigma: 0, // exponential service
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		lambda := rho / 0.001
		const requests = 120000
		svc.StartArrivals(lambda, requests)
		engine.Run(float64(requests)/lambda + 5)

		rep := svc.Collector().Report()
		mu := 1 / 0.001
		want := 1 / (mu - lambda) * 1000 // ms
		got := rep.AvgOverallMs
		if math.Abs(got-want)/want > 0.12 {
			t.Errorf("ρ=%.1f: mean latency = %.4f ms, M/M/1 predicts %.4f ms", rho, got, want)
		}
	}
}
