package service

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/xrand"
)

// ExecState tracks one execution of a sub-request on one instance.
type ExecState int

const (
	// ExecQueued means the execution is waiting in the instance's queue.
	ExecQueued ExecState = iota
	// ExecRunning means the execution occupies the instance's server.
	ExecRunning
	// ExecCancelled means a cancellation message removed the execution
	// from the queue before it started (redundancy policies).
	ExecCancelled
	// ExecDone means the execution finished service.
	ExecDone
)

// Execution is one attempt to run a sub-request on a specific instance.
// Redundancy policies create several executions per sub-request; the first
// to finish wins. An execution that has started service always runs to
// completion and occupies the server even if a sibling already won — that
// wasted work is the redundancy cost the paper's Fig. 6 exposes.
type Execution struct {
	Sub      *SubRequest
	Inst     *Instance
	State    ExecState
	IssuedAt float64
	StartAt  float64
	EndAt    float64
}

// Component is one logical component of the service (paper's c_i): a row of
// the performance matrix. It has one instance under Basic/PCS and several
// replicas under redundancy/reissue policies; closed-loop autoscaling can
// grow Instances further mid-run (see Service.SetActiveReplicas).
type Component struct {
	Stage        int // stage index in the topology
	IndexInStage int
	Global       int // dense index across all components (matrix row)
	Spec         StageSpec
	Instances    []*Instance

	// homeNode is the node the primary was originally placed on; replica r
	// is always placed at (homeNode + r) mod nodes, whether it was created
	// at deployment or conjured later by scale-up, so placement is a pure
	// function of the topology — never of when (or whether) scaling ran.
	homeNode int
}

// Primary returns the component's first (primary) instance.
func (c *Component) Primary() *Instance { return c.Instances[0] }

// ActiveInstances returns the instances dispatch may currently use: the
// first ActiveReplicas of Instances. Parked instances (beyond the active
// count after a scale-down) keep serving whatever they already queued but
// receive no new work.
func (c *Component) ActiveInstances() []*Instance {
	n := c.Instances[0].svc.activeReplicas
	if n > len(c.Instances) {
		n = len(c.Instances)
	}
	return c.Instances[:n]
}

// Instance is one deployed replica of a component: a single-server FIFO
// queue pinned to a node, contributing its VM footprint to that node's
// contention. It implements cluster.Program.
type Instance struct {
	Comp    *Component
	Replica int
	id      string

	svc    *Service
	nodeID int

	busy      bool
	queue     []*Execution
	migrating bool

	// rng is the instance's private service-time stream in laned mode
	// (created lazily from the service's laneSeed and the instance's
	// affinity class); sequential mode draws from the shared svc.rng.
	rng *xrand.Source
	// rootOutstanding is the root class's ledger of executions sent to
	// this instance and not yet heard back about (completed or cancelled).
	// Only root-class events touch it; PickInstance reads it as the laned
	// load signal.
	rootOutstanding int

	// Served counts completed executions (including losers); Cancelled
	// counts executions removed from the queue by cancellation messages.
	Served    int
	Cancelled int
	// BusyTime accumulates seconds of server occupancy, for utilisation
	// accounting.
	BusyTime float64

	// Utilisation tracking: the instance's resource demand scales with how
	// busy its server is, so redundant executions consume real shared
	// resources on the node (the mechanism behind the paper's finding that
	// request redundancy deteriorates under heavy load). demandScale is
	// refreshed once per demand-tick from an EWMA of the busy fraction.
	lastTickAt   float64
	lastBusyTime float64
	utilEWMA     float64
	demandScale  float64
}

// ProgramID implements cluster.Program.
func (in *Instance) ProgramID() string { return in.id }

// classID returns the instance's affinity class: 1 + replica×components +
// global component index. The root class is 0; every instance — including
// ones autoscaling conjures mid-run — gets a stable class that is a pure
// function of the topology, never of lane count or creation time (the
// component list is final before the first event runs; scaling only adds
// replicas).
func (in *Instance) classID() int {
	return 1 + in.Replica*len(in.svc.components) + in.Comp.Global
}

// serviceRNG returns the stream service-time draws come from: the shared
// service stream in sequential mode, the instance's private pre-seeded
// stream in laned mode. The private stream's seed depends only on the
// run's lane seed and the instance's class, so the draw sequence each
// instance sees is identical at any lane count.
func (in *Instance) serviceRNG() *xrand.Source {
	if in.svc.lanes == nil {
		return in.svc.rng
	}
	if in.rng == nil {
		in.rng = xrand.New(xrand.StreamSeed(in.svc.laneSeed, in.classID()+1))
	}
	return in.rng
}

// Demand implements cluster.Program: the stage's nominal VM demand scaled
// by the instance's recent server utilisation (plus a small idle floor for
// the VM's background footprint). An idle replica costs almost nothing; a
// saturated instance exerts the stage's full demand on its node.
func (in *Instance) Demand() cluster.Vector {
	scale := in.demandScale
	if scale <= 0 {
		scale = idleDemandFraction
	}
	d := in.Comp.Spec.Demand.Scale(scale)
	if in.Replica > 0 {
		d = d.Scale(in.svc.cfg.ReplicaFootprintScale)
	}
	return d
}

// idleDemandFraction is the demand floor of an idle instance (VM background
// activity).
const idleDemandFraction = 0.05

// Utilization returns the EWMA busy fraction of the instance's server.
func (in *Instance) Utilization() float64 { return in.utilEWMA }

// demandTick refreshes the utilisation EWMA and demand scale from the busy
// time accumulated since the previous tick. The service calls it for every
// instance once per demand period and then refreshes node aggregates.
func (in *Instance) demandTick(now float64) {
	dt := now - in.lastTickAt
	if dt <= 0 {
		return
	}
	// BusyTime is credited at execution completion; executions are
	// millisecond-scale against a one-second tick, so the truncation at
	// the tick boundary is negligible.
	busy := in.BusyTime
	util := (busy - in.lastBusyTime) / dt
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	const alpha = 0.5
	in.utilEWMA = alpha*util + (1-alpha)*in.utilEWMA
	in.lastTickAt = now
	in.lastBusyTime = busy
	in.demandScale = idleDemandFraction + (1-idleDemandFraction)*in.utilEWMA
}

// NodeID returns the instance's current node.
func (in *Instance) NodeID() int { return in.nodeID }

// QueueLen returns the number of waiting executions (excluding the one in
// service), counting cancelled-but-unswept entries.
func (in *Instance) QueueLen() int { return len(in.queue) }

// Busy reports whether the server is occupied.
func (in *Instance) Busy() bool { return in.busy }

// enqueue admits an execution at virtual time now; if the server is idle
// it starts immediately.
func (in *Instance) enqueue(e *Execution, now float64) {
	if in.busy {
		e.State = ExecQueued
		in.queue = append(in.queue, e)
		return
	}
	in.start(e, now)
}

// start begins service for e at virtual time now. The service time is
// drawn from the ground-truth law using the background contention the
// instance currently experiences (everything on the node except itself —
// a concurrent-read of node aggregates that only change at engine events,
// when every lane is parked).
func (in *Instance) start(e *Execution, now float64) {
	in.busy = true
	e.State = ExecRunning
	e.StartAt = now

	node := in.svc.cluster.Node(in.nodeID)
	background := node.ContentionExcluding(in.id)
	// The work factor scales the nominal per-request work (brownout
	// degradation); the draw itself consumes the same stream position
	// either way, so toggling brownout never renumbers later draws.
	// Storage nodes override the stage nominal with the per-operation
	// work drawn at dispatch (an immutable sub-request field, safe to
	// read from the instance's lane).
	base := in.Comp.Spec.BaseServiceTime
	if o := e.Sub.baseOverride; o > 0 {
		base = o
	}
	base *= in.svc.workFactor
	x := in.svc.law.Sample(base, background, in.serviceRNG())

	if in.svc.lanes != nil {
		cls := in.classID()
		if e.Sub.cancelOnStart > 0 {
			// The start notice reaches the root class one transit delay
			// late; the root relays cancellations timed from the true
			// start (see SubRequest.onStartLaned).
			startedAt := now
			in.svc.scheduleData(cls, rootClass, now+LaneTransitDelay, func(noticeNow float64) {
				e.Sub.onStartLaned(e, startedAt, noticeNow)
			})
		}
		in.svc.scheduleData(cls, cls, now+x, func(endNow float64) {
			in.finish(e, x, endNow)
		})
		return
	}

	e.Sub.onStart(e)
	in.svc.engine.After(x, func(endNow float64) {
		in.finish(e, x, endNow)
	})
}

// finish retires a completed execution and pulls the next one from the
// queue. In laned mode the completion notice travels back to the root
// class (first-completion arbitration, stage advancement, the
// outstanding-work ledger) one transit delay later; the server itself
// moves on immediately.
func (in *Instance) finish(e *Execution, x, endNow float64) {
	e.State = ExecDone
	e.EndAt = endNow
	in.Served++
	in.BusyTime += x
	if in.svc.lanes != nil {
		in.svc.scheduleData(in.classID(), rootClass, endNow+LaneTransitDelay, func(now float64) {
			in.rootOutstanding--
			e.Sub.onComplete(e, now)
		})
	} else {
		e.Sub.onComplete(e, endNow)
	}
	in.next(endNow)
}

// next pops the queue, skipping cancelled executions, and either starts the
// next execution or idles.
func (in *Instance) next(now float64) {
	for len(in.queue) > 0 {
		e := in.queue[0]
		in.queue = in.queue[1:]
		if e.State == ExecCancelled {
			continue
		}
		in.start(e, now)
		return
	}
	in.busy = false
}

// cancelQueued marks a queued execution cancelled so the server skips it.
// Running or finished executions are unaffected (cancellation messages
// cannot claw back started work — paper §VI-C's imperfect-cancellation
// discussion). In laned mode the instance reports the cancellation back
// to the root class so the outstanding-work ledger stays balanced: every
// issued execution is answered exactly once, by a completion or a
// cancellation notice.
func (in *Instance) cancelQueued(e *Execution, now float64) {
	if e.State == ExecQueued {
		e.State = ExecCancelled
		in.Cancelled++
		if in.svc.lanes != nil {
			in.svc.scheduleData(in.classID(), rootClass, now+LaneTransitDelay, func(float64) {
				in.rootOutstanding--
			})
		}
	}
}

// MigrateTo relocates the instance to node dst after delay seconds of
// virtual time, modelling the Storm/ZooKeeper redeployment the paper
// describes (≤3 s, no service interruption). The instance keeps serving
// from its old node until the migration lands. Overlapping migrations are
// rejected (the scheduler removes migrated components from its candidate
// set within an interval, so this only guards against misuse).
func (in *Instance) MigrateTo(dst int, delay float64) error {
	if in.migrating {
		return fmt.Errorf("service: instance %s is already migrating", in.id)
	}
	if dst == in.nodeID {
		return nil
	}
	if delay < 0 {
		return fmt.Errorf("service: negative migration delay")
	}
	in.migrating = true
	in.svc.engine.After(delay, func(float64) {
		in.svc.cluster.Move(in, in.nodeID, dst)
		in.nodeID = dst
		in.migrating = false
		in.svc.migrations++
	})
	return nil
}
