// Package service simulates a multi-stage, component-parallel online
// service (the paper's Nutch-style search engine): requests arrive in an
// open loop, each stage fans a request out to all of its parallel
// components, a stage completes when every component has responded (stage
// latency = max, paper Eq. 3), and stages run sequentially (overall latency
// = sum, Eq. 4). Each component instance is a single-server FIFO queue, so
// with Poisson arrivals it behaves as the M/G/1 system of Eq. 2.
//
// Component service times follow a ground-truth interference law driven by
// the hosting node's contention vector; the performance predictor never
// reads this law directly — it learns it from profiling samples, exactly as
// the paper trains its regressions from historical runs.
package service

import (
	"fmt"

	"repro/internal/cluster"
)

// StageSpec describes one sequential stage of the service.
type StageSpec struct {
	// Name identifies the stage (e.g. "searching").
	Name string
	// Components is the fan-out: the number of parallel components the
	// stage aggregates over.
	Components int
	// BaseServiceTime is the mean service time in seconds of one
	// sub-request on an uncontended node.
	BaseServiceTime float64
	// Demand is the static resource footprint of one component instance's
	// VM (Table III's U_ci).
	Demand cluster.Vector
}

// Topology is the service implementation topology of paper §IV-B: an
// ordered list of sequential stages.
type Topology struct {
	Name   string
	Stages []StageSpec
}

// Validate checks the topology for configuration errors.
func (t Topology) Validate() error {
	if len(t.Stages) == 0 {
		return fmt.Errorf("service: topology %q has no stages", t.Name)
	}
	for i, s := range t.Stages {
		if s.Components <= 0 {
			return fmt.Errorf("service: stage %d (%s) has %d components", i, s.Name, s.Components)
		}
		if s.BaseServiceTime <= 0 {
			return fmt.Errorf("service: stage %d (%s) has non-positive base service time", i, s.Name)
		}
	}
	return nil
}

// NumComponents returns the total component count across stages (the
// paper's m).
func (t Topology) NumComponents() int {
	n := 0
	for _, s := range t.Stages {
		n += s.Components
	}
	return n
}

// NutchTopology models the three-stage Nutch search engine of paper Fig. 1
// with the Fig. 6 deployment: searchers fanned out across searchComponents
// components (100 in the paper), flanked by smaller segmenting and
// aggregating tiers. Base service times are chosen so the service is stable
// at the paper's heaviest arrival rate (500 req/s) on uncontended nodes and
// saturates under heavy interference — the regime where component-level
// scheduling pays off.
func NutchTopology(searchComponents int) Topology {
	if searchComponents <= 0 {
		searchComponents = 100
	}
	return Topology{
		Name: "nutch-search",
		Stages: []StageSpec{
			{
				Name:            "segmenting",
				Components:      5,
				BaseServiceTime: 0.0003, // 0.3 ms
				Demand: cluster.Vector{
					cluster.Core: 0.6, cluster.Cache: 4, cluster.DiskBW: 2, cluster.NetBW: 4,
				},
			},
			{
				Name:            "searching",
				Components:      searchComponents,
				BaseServiceTime: 0.0008, // 0.8 ms
				Demand: cluster.Vector{
					cluster.Core: 0.9, cluster.Cache: 6, cluster.DiskBW: 8, cluster.NetBW: 6,
				},
			},
			{
				Name:            "aggregating",
				Components:      5,
				BaseServiceTime: 0.0002, // 0.2 ms
				Demand: cluster.Vector{
					cluster.Core: 0.5, cluster.Cache: 3, cluster.DiskBW: 2, cluster.NetBW: 8,
				},
			},
		},
	}
}

// EcommerceTopology is a four-stage topology (front-end, catalog,
// recommendation, checkout-pricing) used by the e-commerce example; the
// paper's introduction names e-commerce sites as a target workload class.
func EcommerceTopology() Topology {
	return Topology{
		Name: "ecommerce",
		Stages: []StageSpec{
			{Name: "frontend", Components: 4, BaseServiceTime: 0.0002,
				Demand: cluster.Vector{cluster.Core: 0.5, cluster.Cache: 3, cluster.DiskBW: 1, cluster.NetBW: 6}},
			{Name: "catalog", Components: 32, BaseServiceTime: 0.0007,
				Demand: cluster.Vector{cluster.Core: 0.8, cluster.Cache: 6, cluster.DiskBW: 10, cluster.NetBW: 5}},
			{Name: "recommend", Components: 16, BaseServiceTime: 0.0009,
				Demand: cluster.Vector{cluster.Core: 1.1, cluster.Cache: 8, cluster.DiskBW: 4, cluster.NetBW: 4}},
			{Name: "pricing", Components: 8, BaseServiceTime: 0.0004,
				Demand: cluster.Vector{cluster.Core: 0.6, cluster.Cache: 4, cluster.DiskBW: 2, cluster.NetBW: 5}},
		},
	}
}
