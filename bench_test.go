// Package repro's root benchmark harness regenerates every figure of the
// paper's evaluation (§VI) as testing.B benchmarks, plus ablations of the
// design choices DESIGN.md calls out. Run:
//
//	go test -bench=. -benchmem
//
// Benchmarks print the paper-comparable numbers via b.ReportMetric and
// b.Log, so `go test -bench` output doubles as the EXPERIMENTS.md data
// source. Scale knobs are reduced relative to cmd/pcs-* so a full bench
// pass stays in the minutes range; the cmd tools run the full-size
// versions.
package repro

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/scheduler"
	"repro/internal/shard"
	"repro/internal/traffic"
	"repro/internal/xrand"
	"repro/pcs"
)

// BenchmarkFig5PredictionAccuracy regenerates Fig. 5: per-case prediction
// error of the performance model over 90 co-location cases (3 Hadoop kinds
// × 20 sizes + 3 Spark kinds × 10 sizes). Paper: mean error 2.68 %, with
// <3 %/<5 %/<8 % bands at 63.33 %/82.22 %/96.67 %.
func BenchmarkFig5PredictionAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(experiments.Fig5Config{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanErrPct, "mean-err-%")
		b.ReportMetric(100*res.FracBelow3, "cases<3%-%")
		b.ReportMetric(100*res.FracBelow5, "cases<5%-%")
		b.ReportMetric(100*res.FracBelow8, "cases<8%-%")
		if i == 0 {
			b.Logf("fig5: mean err %.2f%% (paper 2.68%%); bands <3/<5/<8: %.1f/%.1f/%.1f%% (paper 63.3/82.2/96.7)",
				res.MeanErrPct, 100*res.FracBelow3, 100*res.FracBelow5, 100*res.FracBelow8)
		}
	}
}

// fig6BenchRates mirrors the paper's λ sweep. Each (technique, rate) cell
// is its own sub-benchmark so `-bench Fig6` prints the full table.
var fig6BenchRates = []float64{10, 20, 50, 100, 200, 500}

// BenchmarkFig6ServicePerformance regenerates Fig. 6 cell by cell:
// avg overall service latency and p99 component latency per technique per
// arrival rate. Paper shape: PCS lowest overall; RED helps only at light
// load and deteriorates beyond Basic under heavy load (RED-5 worst);
// reissue degrades more gracefully. Headline: PCS −67.05 % p99 and
// −64.16 % overall vs the redundancy/reissue techniques.
func BenchmarkFig6ServicePerformance(b *testing.B) {
	for _, rate := range fig6BenchRates {
		for _, tech := range pcs.Techniques() {
			name := fmt.Sprintf("%s/λ=%.0f", tech, rate)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					requests := 6000
					if min := int(60 * rate); requests < min {
						requests = min
					}
					res, err := pcs.Run(pcs.Options{
						Technique:   tech,
						Seed:        1,
						ArrivalRate: rate,
						Requests:    requests,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.AvgOverallMs, "avg-overall-ms")
					b.ReportMetric(res.P99ComponentMs, "p99-component-ms")
				}
			})
		}
	}
}

// BenchmarkFig7SchedulerScalability regenerates Fig. 7: analysis (matrix
// construction) and search (greedy loop) wall time as (m, k) grows to
// (640, 128). Paper: 551 ms total at the largest point, <0.1 % of the
// 600 s scheduling interval.
func BenchmarkFig7SchedulerScalability(b *testing.B) {
	ladder := []experiments.Fig7Point{
		{M: 40, K: 8}, {M: 80, K: 16}, {M: 160, K: 32}, {M: 320, K: 64}, {M: 640, K: 128},
	}
	for _, p := range ladder {
		b.Run(fmt.Sprintf("m=%d/k=%d", p.M, p.K), func(b *testing.B) {
			src := xrand.New(1)
			in, err := experiments.SyntheticMatrixInput("", p.M, p.K, 10, 100, src)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var analysisMs, searchMs float64
			for i := 0; i < b.N; i++ {
				res, _, err := scheduler.BuildAndSchedule(in, scheduler.Config{Epsilon: 0.005})
				if err != nil {
					b.Fatal(err)
				}
				analysisMs += float64(res.AnalysisTime.Microseconds()) / 1000
				searchMs += float64(res.SearchTime.Microseconds()) / 1000
			}
			b.ReportMetric(analysisMs/float64(b.N), "analysis-ms")
			b.ReportMetric(searchMs/float64(b.N), "search-ms")
			b.ReportMetric((analysisMs+searchMs)/float64(b.N), "total-ms")
		})
	}
}

// BenchmarkAblationThreshold sweeps the migration threshold ε (§VI-C
// discusses why 5 ms — 5 % of the acceptable latency — balances reduction
// opportunity against migration cost; our compressed time scale recentres
// the sweep around 0.005 ms).
func BenchmarkAblationThreshold(b *testing.B) {
	for _, epsUs := range []float64{0, 5, 20, 100, 1000} { // microseconds
		b.Run(fmt.Sprintf("eps=%.0fus", epsUs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := pcs.Run(pcs.Options{
					Technique:      pcs.PCS,
					Seed:           1,
					ArrivalRate:    200,
					Requests:       12000,
					EpsilonSeconds: epsUs * 1e-6,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AvgOverallMs, "avg-overall-ms")
				b.ReportMetric(res.P99ComponentMs, "p99-component-ms")
				b.ReportMetric(float64(res.Migrations), "migrations")
			}
		})
	}
}

// BenchmarkAblationQueueModel compares the extended model's M/G/1 formula
// against the M/M/1 special case (§IV-B) and against no queue model at all
// (basic model only) as the predictor driving PCS.
func BenchmarkAblationQueueModel(b *testing.B) {
	for _, qm := range []string{"mg1", "mm1", "none"} {
		b.Run(qm, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := pcs.Run(pcs.Options{
					Technique:   pcs.PCS,
					Seed:        1,
					ArrivalRate: 300,
					Requests:    18000,
					QueueModel:  qm,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AvgOverallMs, "avg-overall-ms")
				b.ReportMetric(res.P99ComponentMs, "p99-component-ms")
			}
		})
	}
}

// BenchmarkAblationRegressionDegree compares linear vs quadratic
// per-resource regressions as the runtime model (DESIGN.md: degree 1 keeps
// extrapolation monotone; degree 2 captures the convex core term
// in-range).
func BenchmarkAblationRegressionDegree(b *testing.B) {
	for _, degree := range []int{1, 2} {
		b.Run(fmt.Sprintf("degree=%d", degree), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := pcs.Run(pcs.Options{
					Technique:        pcs.PCS,
					Seed:             1,
					ArrivalRate:      200,
					Requests:         12000,
					RegressionDegree: degree,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AvgOverallMs, "avg-overall-ms")
				b.ReportMetric(res.P99ComponentMs, "p99-component-ms")
			}
		})
	}
}

// BenchmarkMatrixBuild isolates performance-matrix construction cost (the
// O(m·k) "analysis" of §VI-D) for profiling, sequentially and sharded
// across all cores. The sharded build is pinned bit-identical to the
// sequential one by the predictor's tests; here only the wall clock is
// interesting.
func BenchmarkMatrixBuild(b *testing.B) {
	src := xrand.New(1)
	in, err := experiments.SyntheticMatrixInput("", 160, 32, 10, 100, src)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := scheduler.BuildAndSchedule(in, scheduler.Config{Epsilon: 1e9}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Machine-independent sub-benchmark name (bench-gate compares runs
	// across machines by name); the core count is a metric instead.
	b.Run("sharded", func(b *testing.B) {
		pool := shard.NewPool(runtime.GOMAXPROCS(0))
		defer pool.Close()
		sharded := in
		sharded.Pool = pool
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := scheduler.BuildAndSchedule(sharded, scheduler.Config{Epsilon: 1e9}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	})
}

// BenchmarkShardedRun is the intra-run sharding acceptance benchmark: one
// large-cluster PCS simulation (96 nodes, 194 components — the regime
// where profiling and the per-interval O(m·k) matrix work dominate) run
// sequentially and at -shards 4. The two runs' Results must be
// bit-identical — sharding may only move the wall clock — and on a ≥4-core
// machine the sharded run must be at least 1.5× faster; the speedup is
// reported either way (a 1-core machine necessarily reports ~1×, so the
// ratio is only enforced where the cores exist).
func BenchmarkShardedRun(b *testing.B) {
	opts := pcs.Options{
		Technique:   pcs.PCS,
		Scenario:    "large-cluster",
		Seed:        1,
		ArrivalRate: 100,
		Requests:    2000,
		// A short interval concentrates the run on the control-plane work
		// sharding targets, mirroring how the scheduling cost scales as
		// clusters grow (Fig. 7's trajectory).
		SchedulingInterval: 2,
		TrainingMixes:      60,
		ProfilingProbes:    150,
	}
	run := func(b *testing.B, shards int) pcs.Result {
		var res pcs.Result
		for i := 0; i < b.N; i++ {
			o := opts
			o.Shards = shards
			var err error
			res, err = pcs.Run(o)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.AvgOverallMs, "avg-overall-ms")
			b.ReportMetric(float64(res.Migrations), "migrations")
		}
		return res
	}
	var sequential, sharded pcs.Result
	var seqNs float64
	var ranSeq, ranSharded bool
	b.Run("sequential", func(b *testing.B) {
		ranSeq = true
		start := time.Now()
		sequential = run(b, 1)
		seqNs = float64(time.Since(start).Nanoseconds()) / float64(b.N)
	})
	// The name avoids a trailing -4: `go test` appends -GOMAXPROCS to
	// benchmark names (omitted at GOMAXPROCS=1), and bench-gate strips
	// that suffix, so a name ending in -digits would parse differently
	// across machines.
	b.Run("sharded4", func(b *testing.B) {
		ranSharded = true
		start := time.Now()
		sharded = run(b, 4)
		shardedNs := float64(time.Since(start).Nanoseconds()) / float64(b.N)
		if seqNs > 0 && shardedNs > 0 {
			speedup := seqNs / shardedNs
			b.ReportMetric(speedup, "speedup-x")
			// Enforce the ratio only when the cores exist AND the timing
			// is averaged over several iterations: at -benchtime 1x (the
			// CI smoke pass) a single measurement on a shared runner is
			// too noisy to fail the build on — there the ns/op gate with
			// its median calibration does the guarding. Run
			// `go test -bench ShardedRun -benchtime 3x` to enforce.
			if runtime.GOMAXPROCS(0) >= 4 && b.N > 1 && speedup < 1.5 {
				b.Errorf("sharded run speedup %.2fx < 1.5x on a %d-core machine",
					speedup, runtime.GOMAXPROCS(0))
			}
		}
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	})
	// A -bench filter may select only one sub-benchmark; compare only when
	// both actually ran.
	if ranSeq && ranSharded && !reflect.DeepEqual(sequential, sharded) {
		b.Fatalf("sharded result diverged from sequential:\nsharded:    %+v\nsequential: %+v",
			sharded, sequential)
	}
}

// BenchmarkLanedRun is the laned data plane's acceptance benchmark: the
// same large-cluster PCS run as BenchmarkShardedRun executed with the
// affinity-laned conservative engine at 1, 4 and 8 lanes. All lane counts
// must produce the identical Result (determinism invariant #10 — lane
// count only moves the wall clock); on a machine with the cores to back
// them, 4 lanes must run ≥ 1.8× and 8 lanes ≥ 2.5× faster than 1 lane.
// The ratio is reported everywhere but, like BenchmarkShardedRun's, only
// enforced where the cores exist and the timing is averaged over more
// than one iteration.
func BenchmarkLanedRun(b *testing.B) {
	opts := pcs.Options{
		Technique:          pcs.PCS,
		Scenario:           "large-cluster",
		Seed:               1,
		ArrivalRate:        100,
		Requests:           2000,
		SchedulingInterval: 2,
		TrainingMixes:      60,
		ProfilingProbes:    150,
	}
	run := func(b *testing.B, lanes int) pcs.Result {
		var res pcs.Result
		for i := 0; i < b.N; i++ {
			o := opts
			o.Lanes = lanes
			var err error
			res, err = pcs.Run(o)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.AvgOverallMs, "avg-overall-ms")
		}
		return res
	}
	// Sub-benchmark names carry the lane count without a trailing -digits
	// suffix (bench-gate strips `go test`'s -GOMAXPROCS suffix by regex).
	cases := []struct {
		name    string
		lanes   int
		minGain float64 // enforced floor vs lanes1, 0 = none
	}{
		{"lanes1", 1, 0},
		{"lanes4", 4, 1.8},
		{"lanes8", 8, 2.5},
	}
	results := make(map[string]pcs.Result)
	var baseNs float64
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			start := time.Now()
			results[c.name] = run(b, c.lanes)
			ns := float64(time.Since(start).Nanoseconds()) / float64(b.N)
			if c.lanes == 1 {
				baseNs = ns
				return
			}
			if baseNs > 0 && ns > 0 {
				speedup := baseNs / ns
				b.ReportMetric(speedup, "speedup-x")
				// Self-skip the ratio where the cores to parallelise across
				// don't exist, or at -benchtime 1x where one wall-clock
				// sample on a shared runner is too noisy to gate on.
				if runtime.GOMAXPROCS(0) >= c.lanes && b.N > 1 && speedup < c.minGain {
					b.Errorf("%d-lane run speedup %.2fx < %.1fx on a %d-core machine",
						c.lanes, speedup, c.minGain, runtime.GOMAXPROCS(0))
				}
			}
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
		})
	}
	// A -bench filter may select a subset; compare whichever cells ran.
	base, ok := results["lanes1"]
	if ok {
		for _, c := range cases[1:] {
			res, ran := results[c.name]
			if ran && !reflect.DeepEqual(res, base) {
				b.Fatalf("%s result diverged from lanes1 (invariant #10):\n%s: %+v\nlanes1: %+v",
					c.name, c.name, res, base)
			}
		}
	}
}

// BenchmarkParallelSweep measures the wall-clock win of the parallel
// replication runner: the same 8-replication aggregate computed serially
// (workers=1) and fanned out across all cores (workers=0 → GOMAXPROCS).
// The aggregates are bit-identical either way — only the wall clock moves —
// so on a 4+ core machine the parallel sub-benchmark's ns/op should be
// ≥ 2× lower than serial's. The speedup ratio is reported on the parallel
// run as cores allow.
func BenchmarkParallelSweep(b *testing.B) {
	const replications = 8
	opts := pcs.Options{
		Technique:        pcs.Basic,
		Seed:             1,
		Nodes:            10,
		SearchComponents: 20,
		ArrivalRate:      100,
		Requests:         4000,
	}
	run := func(b *testing.B, workers int) pcs.Aggregate {
		var agg pcs.Aggregate
		for i := 0; i < b.N; i++ {
			var err error
			agg, err = pcs.RunManyWorkers(opts, replications, workers)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(agg.AvgOverallMs.Mean, "avg-overall-ms")
			b.ReportMetric(agg.AvgOverallMs.CI95, "ci95-ms")
		}
		return agg
	}
	var serial, parallel pcs.Aggregate
	var serialNs float64
	var ranSerial, ranParallel bool
	b.Run("serial", func(b *testing.B) {
		ranSerial = true
		start := time.Now()
		serial = run(b, 1)
		serialNs = float64(time.Since(start).Nanoseconds()) / float64(b.N)
	})
	b.Run("parallel", func(b *testing.B) {
		ranParallel = true
		start := time.Now()
		parallel = run(b, 0)
		parallelNs := float64(time.Since(start).Nanoseconds()) / float64(b.N)
		if serialNs > 0 && parallelNs > 0 {
			b.ReportMetric(serialNs/parallelNs, "speedup-x")
		}
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	})
	// A -bench filter may select only one sub-benchmark; compare only when
	// both actually ran.
	if ranSerial && ranParallel && serial.AvgOverallMs != parallel.AvgOverallMs {
		b.Fatalf("parallel aggregate diverged from serial: %+v vs %+v",
			parallel.AvgOverallMs, serial.AvgOverallMs)
	}
}

// BenchmarkTrafficSources measures the arrival-source layer itself: how
// fast each traffic.Source kind can produce arrivals, isolated from the
// simulation. The absolute numbers only matter relative to each other —
// every kind must stay cheap enough that arrival generation never shows
// up next to the per-request simulation work. These benchmarks postdate
// BENCH_SEED.json; bench-gate reports them as NEW and skips the ratio
// check until the seed is regenerated.
func BenchmarkTrafficSources(b *testing.B) {
	specs := []struct {
		name string
		spec traffic.Spec
	}{
		{"poisson", traffic.Spec{Kind: traffic.KindPoisson, Rate: 100}},
		{"sessions", traffic.Spec{Kind: traffic.KindSessions, Users: 200, ThinkSeconds: 2}},
		{"mmpp", traffic.Spec{Kind: traffic.KindMMPP,
			Rates: []float64{20, 400}, Sojourns: []float64{10, 2}, HeavyTail: true}},
		{"multi-tenant", traffic.Spec{Kind: traffic.KindMultiTenant, Tenants: []traffic.TenantSpec{
			{Name: "a", Source: traffic.Spec{Kind: traffic.KindPoisson, Rate: 60}},
			{Name: "b", Source: traffic.Spec{Kind: traffic.KindPoisson, Rate: 40},
				AdmitRate: 30, Burst: 10},
		}}},
	}
	for _, tc := range specs {
		name, spec := tc.name, tc.spec
		b.Run(name, func(b *testing.B) {
			src, err := spec.New(xrand.New(1).Fork(), 100)
			if err != nil {
				b.Fatal(err)
			}
			now := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, ok := src.Next(now)
				if !ok {
					b.Fatal("source ran dry")
				}
				now = a.At
			}
		})
	}
}

// BenchmarkTrafficTenantStorm runs the tenant-storm scenario end to end:
// the multi-tenant admission path (merge, token buckets, per-tenant
// accounting) under a full Basic simulation. NEW relative to
// BENCH_SEED.json; bench-gate skips it until the seed is regenerated.
func BenchmarkTrafficTenantStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := pcs.Run(pcs.Options{
			Technique:   pcs.Basic,
			Scenario:    "tenant-storm",
			Seed:        int64(i + 1),
			ArrivalRate: 90,
			Requests:    5000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tenants) != 3 {
			b.Fatalf("expected 3 tenant breakdowns, got %d", len(res.Tenants))
		}
	}
}

// BenchmarkSimulationThroughput measures raw simulator speed (requests
// simulated per wall second) at the Fig. 6 deployment size.
func BenchmarkSimulationThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := pcs.Run(pcs.Options{
			Technique:   pcs.Basic,
			Seed:        int64(i + 1),
			ArrivalRate: 100,
			Requests:    5000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed == 0 {
			b.Fatal("no requests completed")
		}
	}
}

// BenchmarkDAGRun measures service-graph execution: the four DAG
// scenarios (fan-out with retries, storage tiers, a breaker storm, a
// timeout-bounded aggregation) each simulated end to end, plus the
// fanout-retry world on the laned data plane at 1 and 4 lanes. Every
// cell asserts invariant #11's accounting (admitted = completed +
// failed + timed out, graph counters present) and iterations must be
// bit-identical; the laned cells must additionally match each other
// exactly (invariant #10 extended to DAG runs).
func BenchmarkDAGRun(b *testing.B) {
	opts := func(scenario string, lanes int) pcs.Options {
		return pcs.Options{
			Technique:   pcs.Basic,
			Scenario:    scenario,
			Seed:        1,
			ArrivalRate: 150,
			Requests:    4000,
			Lanes:       lanes,
		}
	}
	run := func(b *testing.B, o pcs.Options) pcs.Result {
		var first pcs.Result
		for i := 0; i < b.N; i++ {
			res, err := pcs.Run(o)
			if err != nil {
				b.Fatal(err)
			}
			if res.Graph == nil {
				b.Fatal("report carries no graph counters")
			}
			if res.Arrivals != res.Completed+res.Failed+res.TimedOut {
				b.Fatalf("conservation violated: %d arrived, %d completed + %d failed + %d timed out",
					res.Arrivals, res.Completed, res.Failed, res.TimedOut)
			}
			if i == 0 {
				first = res
			} else if !reflect.DeepEqual(res, first) {
				b.Fatal("iterations diverged: DAG run is not deterministic")
			}
			b.ReportMetric(res.AvgOverallMs, "avg-overall-ms")
			b.ReportMetric(float64(res.Graph.Retries), "retries")
		}
		return first
	}
	for _, scenario := range []string{"fanout-retry", "storage-cache", "circuit-storm", "dag-timeout"} {
		scenario := scenario
		b.Run(scenario, func(b *testing.B) { run(b, opts(scenario, 0)) })
	}
	laned := make(map[int]pcs.Result)
	for _, lanes := range []int{1, 4} {
		lanes := lanes
		b.Run(fmt.Sprintf("fanout-retry-lanes%d", lanes), func(b *testing.B) {
			laned[lanes] = run(b, opts("fanout-retry", lanes))
		})
	}
	// A -bench filter may select a subset; compare only when both ran.
	if r1, ok1 := laned[1]; ok1 {
		if r4, ok4 := laned[4]; ok4 && !reflect.DeepEqual(r4, r1) {
			b.Fatalf("laned DAG run diverged across lane counts:\nlanes4: %+v\nlanes1: %+v", r4, r1)
		}
	}
}
